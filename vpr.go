// Package vpr is the public face of this repository: a from-scratch,
// cycle-accurate reproduction of "Virtual-Physical Registers" (A. González,
// J. González, M. Valero; HPCA 1998) as a Go library.
//
// The paper proposes delaying the allocation of physical registers from the
// decode stage (conventional renaming) to the issue or write-back stage,
// tracking dependences meanwhile through storage-less virtual-physical
// register tags. This package exposes:
//
//   - simulation of single workload × machine configuration points (Run),
//   - the workload catalog named after the paper's SPEC95 benchmarks,
//   - experiment runners that regenerate every table and figure of the
//     paper's evaluation (Table2, Figure4..Figure7) plus ablations,
//   - the §3.1 analytic register-pressure model (ChainPressure),
//   - an assembler for the mini-ISA, so custom workloads can be written
//     as assembly text and simulated like the built-in kernels.
//
// Everything underneath — ISA, assembler, functional emulator, trace
// layer, branch predictor, lockup-free cache, renaming schemes and the
// out-of-order pipeline — lives in internal packages; this package is the
// supported API surface. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package vpr

import (
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Scheme selects a register renaming scheme.
type Scheme = core.Scheme

// The three schemes the paper compares.
const (
	SchemeConventional = core.SchemeConventional // R10000-style, allocate at decode
	SchemeVPWriteback  = core.SchemeVPWriteback  // virtual-physical, allocate at write-back
	SchemeVPIssue      = core.SchemeVPIssue      // virtual-physical, allocate at issue
)

// Config is the full machine description (§4.1 of the paper by default).
type Config = pipeline.Config

// RenameParams sizes the renamer (physical registers, NRR, ...).
type RenameParams = core.Params

// Stats is the statistics block a run produces.
type Stats = pipeline.Stats

// RunSpec describes one simulation (workload or custom generator, machine
// configuration, instruction budget).
type RunSpec = sim.Spec

// Result is a completed run.
type Result = sim.Result

// DefaultConfig returns the paper's machine: 8-way out-of-order, 128-entry
// ROB, Table 1 functional units, 64 physical registers per file, 16 KB
// lockup-free L1 with 8 MSHRs, 2048-entry BHT, PA-8000-style speculative
// memory disambiguation.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// Run simulates one point.
func Run(spec RunSpec) (Result, error) { return sim.Run(spec) }

// Workload describes one catalog entry.
type Workload struct {
	Name        string
	Class       string // "int" or "fp"
	Description string
}

// Workloads lists the nine kernels in the paper's reporting order.
func Workloads() []Workload {
	var out []Workload
	for _, s := range workloads.Catalog() {
		out = append(out, Workload{Name: s.Name, Class: s.Class, Description: s.Description})
	}
	return out
}

// WorkloadGenerator returns a fresh emulator-backed trace generator for a
// catalog workload. Wrap it with TakeTrace to bound its length.
func WorkloadGenerator(name string) (trace.Generator, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, &UnknownWorkloadError{Name: name}
	}
	return w.NewGen()
}

// UnknownWorkloadError reports a workload name not in the catalog.
type UnknownWorkloadError struct{ Name string }

// Error implements error.
func (e *UnknownWorkloadError) Error() string {
	return "vpr: unknown workload " + e.Name
}

// Program is an assembled program for the mini-ISA.
type Program = isa.Program

// Assemble translates mini-ISA assembly text (see internal/asm for the
// syntax) into a Program that can drive the simulator via NewTrace.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// NewTrace functionally executes a program and returns the committed-path
// trace generator (with golden values) that drives the timing simulator.
func NewTrace(p *Program) (trace.Generator, error) {
	gen, err := emu.NewTraceGen(p)
	if err != nil {
		return nil, err
	}
	return gen, nil
}

// TakeTrace bounds a generator to n instructions.
func TakeTrace(gen trace.Generator, n int64) trace.Generator { return trace.Take(gen, n) }

// --- Experiments ------------------------------------------------------------

// ExperimentOptions tune the experiment runners (instruction budget per
// run, workload subset, progress callback).
type ExperimentOptions = experiments.Options

// Experiment result types, re-exported for consumers of the runners.
type (
	Table2      = experiments.Table2
	NRRSweep    = experiments.NRRSweep
	Fig6Row     = experiments.Fig6Row
	Fig7        = experiments.Fig7
	AblationRow = experiments.AblationRow
)

// RunTable2 reproduces Table 2 (conventional vs VP write-back at 64
// registers, max NRR), optionally with the 20-cycle miss-penalty footnote.
func RunTable2(opts ExperimentOptions, withPenalty20 bool) (Table2, error) {
	return experiments.RunTable2(opts, withPenalty20)
}

// RunFigure4 reproduces figure 4 (VP write-back speedup across NRR).
func RunFigure4(opts ExperimentOptions) (NRRSweep, error) {
	return experiments.RunNRRSweep(core.SchemeVPWriteback, nil, opts)
}

// RunFigure5 reproduces figure 5 (VP issue-allocation speedup across NRR).
func RunFigure5(opts ExperimentOptions) (NRRSweep, error) {
	return experiments.RunNRRSweep(core.SchemeVPIssue, nil, opts)
}

// RunFigure6 reproduces figure 6 (write-back vs issue at NRR=32).
func RunFigure6(opts ExperimentOptions) ([]Fig6Row, error) {
	return experiments.RunFigure6(opts)
}

// RunFigure7 reproduces figure 7 (register-count sweep 48/64/96).
func RunFigure7(opts ExperimentOptions) (Fig7, error) {
	return experiments.RunFigure7(opts)
}

// Ablation runners (see DESIGN.md §6).
var (
	RunEarlyReleaseAblation   = experiments.RunEarlyReleaseAblation
	RunDisambiguationAblation = experiments.RunDisambiguationAblation
	RunRecoveryAblation       = experiments.RunRecoveryAblation
	RunSplitNRRAblation       = experiments.RunSplitNRRAblation
)

// SMTRow is one point of the simultaneous-multithreading scaling study.
type SMTRow = experiments.SMTRow

// LifetimeRow is one point of the register-holding-time study (§3.1 in
// vivo).
type LifetimeRow = experiments.LifetimeRow

// RunLifetime measures how long each scheme holds physical registers —
// the experimental counterpart of the §3.1 analytic example.
func RunLifetime(opts ExperimentOptions) ([]LifetimeRow, error) {
	return experiments.RunLifetime(opts)
}

// SMTSpec and SMTResult describe direct multithreaded runs.
type (
	SMTSpec   = sim.SMTSpec
	SMTResult = sim.SMTResult
)

// RunSMT simulates one multithreaded machine: one workload per hardware
// thread sharing the pipeline, cache and physical register files.
func RunSMT(spec SMTSpec) (SMTResult, error) { return sim.RunSMT(spec) }

// RunSMTScaling realizes the paper's §5 future-work prediction across
// thread counts (default 1, 2, 4): the virtual-physical advantage under a
// shared register file.
func RunSMTScaling(threadCounts []int, opts ExperimentOptions) ([]SMTRow, error) {
	return experiments.RunSMTScaling(threadCounts, opts)
}

// Renderers that format experiment results in the paper's row/series shape.
var (
	RenderTable2   = experiments.RenderTable2
	RenderNRRSweep = experiments.RenderNRRSweep
	RenderFigure6  = experiments.RenderFigure6
	RenderFigure7  = experiments.RenderFigure7
	RenderAblation = experiments.RenderAblation
	RenderSMT      = experiments.RenderSMT
	RenderLifetime = experiments.RenderLifetime
)

// --- §3.1 analytic pressure model ---------------------------------------------

// AllocPoint is where a destination register is allocated (decode, issue,
// write-back).
type AllocPoint = sim.AllocPoint

// The three allocation points of the paper's §3.1 example.
const (
	AllocDecode    = sim.AllocDecode
	AllocIssue     = sim.AllocIssue
	AllocWriteback = sim.AllocWriteback
)

// ChainInterval is one instruction's register-holding interval.
type ChainInterval = sim.ChainInterval

// ChainPressure reproduces the paper's §3.1 register-pressure arithmetic
// for a serial dependence chain.
func ChainPressure(latencies []int, point AllocPoint) []ChainInterval {
	return sim.ChainPressure(latencies, point)
}

// TotalPressure sums register·cycles over the intervals.
func TotalPressure(ivs []ChainInterval) int { return sim.TotalPressure(ivs) }

// PaperExampleLatencies is the §3.1 chain (20-cycle load miss, fdiv 20,
// fmul 10, fadd 5).
func PaperExampleLatencies() []int { return sim.PaperExampleLatencies() }

// HarmonicMean is the paper's summary statistic for IPC.
func HarmonicMean(xs []float64) float64 { return metrics.HarmonicMean(xs) }

// ImprovementPct matches the paper's "imp (%)" columns.
func ImprovementPct(old, new float64) float64 { return metrics.ImprovementPct(old, new) }
