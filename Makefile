GO ?= go

.PHONY: check vet build test lint diff-oracle race bench profile tables clean

# Tier-1 gate: everything must vet, build and pass.
check: vet build test

# Waiver ratchet: vplint fails when the tree's total waiver count
# (//vpr:allowalloc, statsexempt, nocachekey, phaseexempt, guardexempt,
# detexempt) exceeds this baseline. Lower it when a waiver is removed;
# raising it needs a justification in the change that does so. The
# baseline covers the scanoracle variant, which carries the extra
# scan-kernel waivers (58 on the default tags as of this writing).
VPLINT_MAX_WAIVERS ?= 60

# Invariant lint: the vplint analyzers (docs/LINTING.md) over the whole
# module, in both build-tag variants so the scan oracle stays analyzable.
# The binary is built once and reused; only the loader's go-list pass
# differs between the variants.
lint:
	$(GO) build -o bin/vplint ./cmd/vplint
	./bin/vplint -maxwaivers $(VPLINT_MAX_WAIVERS) ./...
	./bin/vplint -maxwaivers $(VPLINT_MAX_WAIVERS) -tags scanoracle ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Differential oracle: the pre-refactor scan kernel lives behind the
# scanoracle build tag; this runs the event-vs-scan equivalence sweep
# (CI runs it on every push).
diff-oracle:
	$(GO) vet -tags scanoracle ./internal/pipeline/
	$(GO) test -tags scanoracle -run 'TestDifferential' ./internal/pipeline/

race:
	$(GO) test -race ./...

# Benchmarks; BenchmarkRunBatch compares the serial and parallel engine,
# and vpbench records the perf trajectory into BENCH_pipeline.json
# (instrs/sec per scheme, the multicore/coherence points with their
# lockstep-vs-parallel twins and GOMAXPROCS sweep, harness timings — the
# schema and CI-enforced fields are documented in docs/BENCH.md).
# -repeat keeps the best of N runs per point so the recorded trajectory
# measures the simulator, not host noise.
BENCH_REPEAT ?= 5
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) run ./cmd/vpbench -out BENCH_pipeline.json -repeat $(BENCH_REPEAT)

# CPU+heap profiles of the vpbench measurement itself (the multicore
# points dominate): feed the outputs to `go tool pprof bin/vpbench
# cpu.pprof`. See docs/BENCH.md for reading them against the gate
# counters.
profile:
	$(GO) build -o bin/vpbench ./cmd/vpbench
	./bin/vpbench -out BENCH_profile.json -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "profiles: cpu.pprof mem.pprof (go tool pprof bin/vpbench cpu.pprof)"

# Regenerate every paper table/figure through the registry + engine path.
tables:
	$(GO) run ./cmd/vptables -exp all

clean:
	$(GO) clean ./...
