// Command vpbench measures simulator and harness throughput and writes a
// machine-readable BENCH_pipeline.json, so the repository's performance
// trajectory is recorded PR over PR (make bench).
//
// Two families of numbers are reported:
//
//   - scheme points: simulated instructions and cycles per host second for
//     each renaming scheme on representative workloads, straight from the
//     kernel's throughput stats (pipeline.Stats);
//   - harness timings: wall-clock for the full workload × scheme grid
//     through Engine.RunBatch at parallelism 1 and GOMAXPROCS, the number
//     `vptables -exp all` effectively pays.
//
// The multicore and coherence points carry lockstep-vs-parallel twins and
// a GOMAXPROCS sweep (1 vs NumCPU) so the parallel stepper's speedup is
// recorded against measured host parallelism, not assumed. -repeat N
// reruns each measured point and keeps the best throughput (architectural
// fields are cross-checked for equality across repeats), and -cpuprofile/
// -memprofile capture pprof profiles of the whole run (make profile).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	vpr "repro"
)

type schemePoint struct {
	Scheme       string  `json:"scheme"`
	Workload     string  `json:"workload"`
	Instr        int64   `json:"instr"`
	IPC          float64 `json:"ipc"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	// AllocsPerInstr is host heap allocations per simulated instruction
	// (runtime.MemStats.Mallocs delta over the run) — the allocs/op
	// number the CI bench smoke validates.
	AllocsPerInstr float64 `json:"allocs_per_instr"`
}

// gateCounters records what the parallel stepper's wait ladder did during
// a point (pipeline.Stats Gate*/Pacing*): how often the memory gate and
// the pacing window actually blocked, and whether the waits were spent
// spinning, yielding, or parked. All zero on lockstep points; host
// scheduling determines the values, so twins are not expected to match
// on these.
type gateCounters struct {
	GateWaits   int64 `json:"gate_waits"`
	PacingWaits int64 `json:"pacing_waits"`
	GateSpins   int64 `json:"gate_spins"`
	GateYields  int64 `json:"gate_yields"`
	GateParks   int64 `json:"gate_parks"`
}

func countersOf(s vpr.Stats) gateCounters {
	return gateCounters{
		GateWaits:   s.GateWaits,
		PacingWaits: s.PacingWaits,
		GateSpins:   s.GateSpins,
		GateYields:  s.GateYields,
		GateParks:   s.GateParks,
	}
}

// multicorePoint records the multi-core runner's throughput: N cores
// behind the banked shared L2, stepped in the recorded mode. The CI
// bench smoke fails if this point is missing from the report.
type multicorePoint struct {
	Workload    string `json:"workload"`
	Cores       int    `json:"cores"`
	L2SizeBytes int    `json:"l2_size_bytes"`
	L2Banks     int    `json:"l2_banks"`
	// Step is the stepping mode the point ran under ("lockstep",
	// "parallel", "skew:W"); GoMaxProcs is the host parallelism it had
	// available. Stats are bit-identical across modes — only
	// instrs_per_sec moves, and only when go_max_procs > 1.
	Step           string  `json:"step"`
	GoMaxProcs     int     `json:"go_max_procs"`
	Instr          int64   `json:"instr"` // committed, aggregate
	IPC            float64 `json:"ipc"`   // aggregate
	InstrsPerSec   float64 `json:"instrs_per_sec"`
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	L2MissRatio    float64 `json:"l2_miss_ratio"`
	gateCounters
}

// coherencePoint records the coherent multicore runner's throughput and
// invalidation traffic on the sharing-heavy synthetic workload: cores in
// one address space with the directory on, under the recorded protocol.
// The CI bench smoke fails if this point is missing, lacks its protocol
// name, or shows no invalidations, and cross-checks the lockstep and
// parallel variants for identical deterministic fields.
type coherencePoint struct {
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	// Protocol is the coherence protocol the point ran under ("msi",
	// "mesi", "moesi"); Directory the sharer representation ("" =
	// fullmap).
	Protocol          string  `json:"protocol"`
	Directory         string  `json:"directory,omitempty"`
	Step              string  `json:"step"`
	GoMaxProcs        int     `json:"go_max_procs"`
	Instr             int64   `json:"instr"` // committed, aggregate
	IPC               float64 `json:"ipc"`   // aggregate
	InstrsPerSec      float64 `json:"instrs_per_sec"`
	AllocsPerInstr    float64 `json:"allocs_per_instr"`
	Invalidations     int64   `json:"l2_invalidations"`
	BackInvalidations int64   `json:"l2_back_invalidations"`
	Upgrades          int64   `json:"l2_upgrades"`
	WritebackForwards int64   `json:"l2_writeback_forwards"`
	OwnerForwards     int64   `json:"l2_owner_forwards"`
	SilentUpgrades    int64   `json:"silent_upgrades"`
	gateCounters
}

type harnessTiming struct {
	Specs           int     `json:"specs"`
	InstrPerSpec    int64   `json:"instr_per_spec"`
	Parallelism     int     `json:"parallelism"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	SerialInstrsPS  float64 `json:"serial_instrs_per_sec"`
	ParallelInstrPS float64 `json:"parallel_instrs_per_sec"`
}

type report struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated"`
	// GoMaxProcs is the harness's ambient GOMAXPROCS; NumCPU the host's
	// processor count (the sweep and the CI speedup gate key on it:
	// GOMAXPROCS can be forced above 1 on a single-CPU host, but real
	// parallel speedup needs num_cpu > 1).
	GoMaxProcs int           `json:"go_max_procs"`
	NumCPU     int           `json:"num_cpu"`
	Repeat     int           `json:"repeat"`
	Schemes    []schemePoint `json:"schemes"`
	// Multicore/Coherence run the serial lockstep oracle; the *_parallel
	// twins rerun the identical spec under the concurrent stepper (-step,
	// default skew:64). Deterministic fields must match pairwise; the
	// instrs_per_sec ratio is the recorded parallel-stepping speedup.
	Multicore         multicorePoint `json:"multicore"`
	MulticoreParallel multicorePoint `json:"multicore_parallel"`
	Coherence         coherencePoint `json:"coherence"`
	CoherenceParallel coherencePoint `json:"coherence_parallel"`
	// CoherenceMOESI is the lockstep Coherence point rerun under MOESI on
	// the identical workload: the Owned state converts read-triggered L2
	// write-back forwards into cache-to-cache owner forwards, so its
	// l2_writeback_forwards must come in strictly below the MSI twin's
	// (CI-enforced) — the protocol refactor's measured payoff.
	CoherenceMOESI coherencePoint `json:"coherence_moesi"`
	// Sweep reruns the coherence twins with GOMAXPROCS forced to 1 and
	// to NumCPU (when they differ), so BENCH_pipeline.json always holds
	// a go_max_procs>1 twin pair and the speedup trend over host
	// parallelism is recorded, not extrapolated.
	Sweep   []coherencePoint `json:"gomaxprocs_sweep"`
	Harness harnessTiming    `json:"harness"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_pipeline.json", "output file")
		instr      = flag.Int64("instr", 100_000, "instructions per scheme point")
		gridInstr  = flag.Int64("grid-instr", 20_000, "instructions per harness grid point")
		wls        = flag.String("workloads", "compress,swim,hydro2d", "workloads for the scheme points")
		fetchPol   = flag.String("fetch", "", "fetch policy for every run (default round-robin)")
		issueSel   = flag.String("issue", "", "issue-select heuristic for every run (default oldest-first)")
		cores      = flag.Int("cores", 2, "core count for the recorded multicore and coherence points")
		l2Geom     = flag.String("l2", "", "shared L2 geometry for the multicore/coherence points: SIZE[:BANKS], e.g. 256K:4 (default DefaultL2Config)")
		coh        = flag.Bool("coherence", false, "run the generic multicore point with one shared address space and the coherence directory on (the dedicated coherence points always do)")
		protoFlag  = flag.String("protocol", "", "coherence protocol for the coherence points: msi (default), mesi, or moesi (the coherence_moesi point always runs moesi)")
		dirFlag    = flag.String("dir", "", "coherence directory representation for the coherence points: fullmap (default) or limited[:N]")
		stepFlag   = flag.String("step", "skew:64", "stepping mode for the *_parallel points: parallel or skew:W (the base points always run lockstep)")
		repeat     = flag.Int("repeat", 1, "repeats per measured point; the best throughput is kept and architectural stats are cross-checked for equality")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (after GC) to this file")
	)
	flag.Parse()
	if *cores < 1 {
		fmt.Fprintf(os.Stderr, "vpbench: -cores must be at least 1, have %d\n", *cores)
		os.Exit(1)
	}
	if *repeat < 1 {
		fmt.Fprintf(os.Stderr, "vpbench: -repeat must be at least 1, have %d\n", *repeat)
		os.Exit(1)
	}
	step, err := vpr.ParseStepMode(*stepFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpbench: -step: %v\n", err)
		os.Exit(1)
	}
	if _, err := vpr.CoherenceProtocolByName(*protoFlag); err != nil {
		fmt.Fprintf(os.Stderr, "vpbench: -protocol: %v\n", err)
		os.Exit(1)
	}
	if err := vpr.ParseDirectoryKind(*dirFlag); err != nil {
		fmt.Fprintf(os.Stderr, "vpbench: -dir: %v\n", err)
		os.Exit(1)
	}
	l2 := vpr.DefaultL2Config()
	if *l2Geom != "" {
		size, banks, err := vpr.ParseL2Geometry(*l2Geom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: -l2: %v\n", err)
			os.Exit(1)
		}
		l2.SizeBytes = size
		if banks > 0 {
			l2.Banks = banks
		}
	}
	var policies vpr.Policies
	if *fetchPol != "" {
		p, ok := vpr.FetchPolicyByName(*fetchPol)
		if !ok {
			fmt.Fprintf(os.Stderr, "vpbench: unknown fetch policy %q\n", *fetchPol)
			os.Exit(1)
		}
		policies.Fetch = p
	}
	if *issueSel != "" {
		sel, ok := vpr.IssueSelectByName(*issueSel)
		if !ok {
			fmt.Fprintf(os.Stderr, "vpbench: unknown issue-select heuristic %q\n", *issueSel)
			os.Exit(1)
		}
		policies.Issue = sel
	}
	var cpuFile *os.File
	if *cpuprofile != "" {
		cpuFile, err = os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: -cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: -cpuprofile:", err)
			os.Exit(1)
		}
	}
	runErr := run(*out, *instr, *gridInstr, strings.Split(*wls, ","), policies, *cores, l2, *coh, *protoFlag, *dirFlag, step, *repeat)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: -cpuprofile:", err)
			os.Exit(1)
		}
		fmt.Println("wrote CPU profile to", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: -memprofile:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: -memprofile:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: -memprofile:", err)
			os.Exit(1)
		}
		fmt.Println("wrote heap profile to", *memprofile)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "vpbench:", runErr)
		os.Exit(1)
	}
}

// stepName spells a step mode for the report; the zero mode is recorded
// under its canonical name.
func stepName(m vpr.StepMode) string {
	if m == "" {
		return string(vpr.StepLockstep)
	}
	return string(m)
}

// bestOf runs once() n times and keeps the result with the best
// throughput — the run least disturbed by host noise, the benchmarking
// convention — while cross-checking that the architectural view
// (Stats.Arch) is identical across every repeat: a free determinism test
// on every bench invocation.
func bestOf(n int, once func() (vpr.Stats, float64, error)) (vpr.Stats, float64, error) {
	best, bestAllocs, err := once()
	if err != nil {
		return vpr.Stats{}, 0, err
	}
	for i := 1; i < n; i++ {
		st, allocs, err := once()
		if err != nil {
			return vpr.Stats{}, 0, err
		}
		if st.Arch() != best.Arch() {
			return vpr.Stats{}, 0, fmt.Errorf("repeat %d diverged architecturally from repeat 0: %v vs %v", i, st.Arch(), best.Arch())
		}
		if st.InstrsPerSec > best.InstrsPerSec {
			best, bestAllocs = st, allocs
		}
	}
	return best, bestAllocs, nil
}

// measureMulticore runs one multi-core point — the same workload on every
// core, stepped in the given mode — bracketed by MemStats reads,
// returning the aggregate stats and the host heap allocations per
// committed instruction. All recorded multicore points share this
// measurement protocol, and none go through the engine cache, so a
// lockstep point and its parallel twin are both honestly recomputed
// in-process.
func measureMulticore(wl string, policies vpr.Policies, cores int, l2 vpr.L2Config,
	coherent bool, proto, dir string, instr int64, step vpr.StepMode) (vpr.Stats, float64, error) {
	cfg := vpr.DefaultConfig()
	cfg.Policies = policies
	names := make([]string, cores)
	for i := range names {
		names[i] = wl
	}
	spec := vpr.MulticoreSpec{
		Workloads:          names,
		Config:             cfg,
		L2:                 l2,
		SharedAddressSpace: coherent,
		Coherence:          coherent,
		MaxInstrPerCore:    instr / int64(cores),
		Step:               step,
	}
	if coherent {
		spec.Protocol, spec.Directory = proto, dir
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := vpr.RunMulticore(spec)
	if err != nil {
		return vpr.Stats{}, 0, err
	}
	runtime.ReadMemStats(&m1)
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(max(res.Stats.Committed, 1))
	return res.Stats, allocs, nil
}

func run(out string, instr, gridInstr int64, workloads []string, policies vpr.Policies,
	cores int, l2 vpr.L2Config, coherentMC bool, proto, dir string, step vpr.StepMode, repeat int) error {
	rep := report{
		Schema:     "vpr-bench/v2",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Repeat:     repeat,
	}
	ctx := context.Background()
	schemes := []vpr.Scheme{vpr.SchemeConventional, vpr.SchemeVPWriteback, vpr.SchemeVPIssue}

	// Scheme points: fresh engine, cache off, so every point simulates.
	// Heap allocations are measured around each run (Mallocs is a
	// monotonic count, unaffected by collections).
	eng := vpr.New(vpr.WithCache(0))
	for _, wl := range workloads {
		for _, scheme := range schemes {
			cfg := vpr.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Policies = policies
			st, allocs, err := bestOf(repeat, func() (vpr.Stats, float64, error) {
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				res, err := eng.Run(ctx, vpr.RunSpec{Workload: wl, Config: cfg, MaxInstr: instr})
				if err != nil {
					return vpr.Stats{}, 0, err
				}
				runtime.ReadMemStats(&m1)
				return res.Stats, float64(m1.Mallocs-m0.Mallocs) / float64(max(res.Stats.Committed, 1)), nil
			})
			if err != nil {
				return err
			}
			rep.Schemes = append(rep.Schemes, schemePoint{
				Scheme:         scheme.String(),
				Workload:       wl,
				Instr:          st.Committed,
				IPC:            st.IPC(),
				CyclesPerSec:   st.CyclesPerSec,
				InstrsPerSec:   st.InstrsPerSec,
				AllocsPerInstr: allocs,
			})
			fmt.Printf("%-8s %-10s %9.0f instr/s  %9.0f cycles/s  ipc %.3f  %6.3f allocs/instr\n",
				scheme, wl, st.InstrsPerSec, st.CyclesPerSec, st.IPC(), allocs)
		}
	}

	// Multicore points: N cores behind the banked shared L2, once under
	// the serial lockstep oracle (the throughput the multicore experiment
	// pays per point) and once under the concurrent stepper.
	mcPoint := func(mode vpr.StepMode) (multicorePoint, error) {
		wl := workloads[0]
		st, allocs, err := bestOf(repeat, func() (vpr.Stats, float64, error) {
			return measureMulticore(wl, policies, cores, l2, coherentMC, proto, dir, instr, mode)
		})
		if err != nil {
			return multicorePoint{}, err
		}
		mcMiss := st.L2MissRatio()
		pt := multicorePoint{
			Workload:       wl,
			Cores:          cores,
			L2SizeBytes:    l2.SizeBytes,
			L2Banks:        l2.Banks,
			Step:           stepName(mode),
			GoMaxProcs:     runtime.GOMAXPROCS(0),
			Instr:          st.Committed,
			IPC:            st.IPC(),
			InstrsPerSec:   st.InstrsPerSec,
			AllocsPerInstr: allocs,
			L2MissRatio:    mcMiss,
			gateCounters:   countersOf(st),
		}
		fmt.Printf("%-14s %-10s %9.0f instr/s  %9.0f cycles/s  ipc %.3f  %6.3f allocs/instr  l2miss %.3f\n",
			fmt.Sprintf("mc×%d %s", cores, pt.Step), wl, st.InstrsPerSec, st.CyclesPerSec,
			st.IPC(), allocs, mcMiss)
		return pt, nil
	}
	var err error
	if rep.Multicore, err = mcPoint(vpr.StepLockstep); err != nil {
		return err
	}
	if rep.MulticoreParallel, err = mcPoint(step); err != nil {
		return err
	}

	// Coherence points: the directory protocol on the sharing-heavy
	// synthetic workload — cores in one address space writing the same
	// lines, the cost the coherence experiment pays per point. Always
	// recorded (and CI-enforced: l2_invalidations must be nonzero, the
	// parallel twin's deterministic fields must equal the lockstep
	// point's, and the dedicated MOESI point must write back to the L2
	// strictly less than the default MSI point) so the invalidation path
	// stays on the perf record; a single core has no remote sharers to
	// invalidate, so the points run at least two.
	cohPoint := func(protoSel string, mode vpr.StepMode) (coherencePoint, error) {
		wl := vpr.SynthWorkloadPrefix + "sharing"
		cohCores := max(cores, 2)
		p, err := vpr.CoherenceProtocolByName(protoSel)
		if err != nil {
			return coherencePoint{}, err
		}
		st, allocs, err := bestOf(repeat, func() (vpr.Stats, float64, error) {
			return measureMulticore(wl, policies, cohCores, l2, true, protoSel, dir, instr, mode)
		})
		if err != nil {
			return coherencePoint{}, err
		}
		pt := coherencePoint{
			Workload:          wl,
			Cores:             cohCores,
			Protocol:          p.Name(),
			Directory:         dir,
			Step:              stepName(mode),
			GoMaxProcs:        runtime.GOMAXPROCS(0),
			Instr:             st.Committed,
			IPC:               st.IPC(),
			InstrsPerSec:      st.InstrsPerSec,
			AllocsPerInstr:    allocs,
			Invalidations:     st.L2Invalidations,
			BackInvalidations: st.L2BackInvalidations,
			Upgrades:          st.L2Upgrades,
			WritebackForwards: st.L2WritebackForwards,
			OwnerForwards:     st.L2OwnerForwards,
			SilentUpgrades:    st.SilentUpgrades,
			gateCounters:      countersOf(st),
		}
		fmt.Printf("%-16s %-10s %9.0f instr/s  %9.0f cycles/s  ipc %.3f  %6.3f allocs/instr  inval %d\n",
			fmt.Sprintf("%s×%d %s", pt.Protocol, cohCores, pt.Step), wl, st.InstrsPerSec, st.CyclesPerSec,
			st.IPC(), allocs, st.L2Invalidations)
		return pt, nil
	}
	if rep.Coherence, err = cohPoint(proto, vpr.StepLockstep); err != nil {
		return err
	}
	if rep.CoherenceParallel, err = cohPoint(proto, step); err != nil {
		return err
	}
	if rep.CoherenceMOESI, err = cohPoint("moesi", vpr.StepLockstep); err != nil {
		return err
	}

	// GOMAXPROCS sweep: the coherence twins again with host parallelism
	// pinned to 1 and to NumCPU, so the report always carries a
	// go_max_procs>1 twin pair (on a single-CPU host GOMAXPROCS=2 still
	// exercises the multi-P scheduler — it just cannot add CPU time) and
	// the speedup trend is measured rather than assumed.
	prev := runtime.GOMAXPROCS(0)
	sweep := []int{1, max(2, runtime.NumCPU())}
	for _, gmp := range sweep {
		runtime.GOMAXPROCS(gmp)
		lock, err := cohPoint(proto, vpr.StepLockstep)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			return err
		}
		par, err := cohPoint(proto, step)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			return err
		}
		rep.Sweep = append(rep.Sweep, lock, par)
	}
	runtime.GOMAXPROCS(prev)

	// Harness grid: every catalog workload × scheme, serial vs parallel.
	var specs []vpr.RunSpec
	for _, w := range vpr.Workloads() {
		for _, scheme := range schemes {
			cfg := vpr.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Policies = policies
			specs = append(specs, vpr.RunSpec{Workload: w.Name, Config: cfg, MaxInstr: gridInstr})
		}
	}
	timeBatch := func(par int) (float64, float64, error) {
		e := vpr.New(vpr.WithParallelism(par), vpr.WithCache(0))
		start := time.Now()
		results, err := e.RunBatch(ctx, specs)
		if err != nil {
			return 0, 0, err
		}
		secs := time.Since(start).Seconds()
		var committed int64
		for _, r := range results {
			committed += r.Stats.Committed
		}
		return secs, float64(committed) / secs, nil
	}
	par := runtime.GOMAXPROCS(0)
	serialSecs, serialIPS, err := timeBatch(1)
	if err != nil {
		return err
	}
	parSecs, parIPS, err := timeBatch(par)
	if err != nil {
		return err
	}
	rep.Harness = harnessTiming{
		Specs:           len(specs),
		InstrPerSpec:    gridInstr,
		Parallelism:     par,
		SerialSeconds:   serialSecs,
		ParallelSeconds: parSecs,
		SerialInstrsPS:  serialIPS,
		ParallelInstrPS: parIPS,
	}
	fmt.Printf("harness  %d specs: serial %.2fs (%.0f instr/s), par=%d %.2fs (%.0f instr/s)\n",
		len(specs), serialSecs, serialIPS, par, parSecs, parIPS)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
