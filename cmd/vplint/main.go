// Command vplint runs the repository's invariant linters — the
// internal/lint analyzer suite — over the given packages and exits
// non-zero if any finding survives. It is the mechanized form of the
// review checklist documented in docs/LINTING.md:
//
//	annotcheck    //vpr: directives must be known, well-placed, and
//	              well-formed (a typo silently disables its analyzer)
//	hotpathalloc  //vpr:hotpath functions and their static callees must
//	              not allocate (waive per line with //vpr:allowalloc)
//	statsflow     every //vpr:stats counter must reach a //vpr:statsink
//	cachekey      every //vpr:cachekey field must render into the
//	              engine's canonical result-cache key
//	reghygiene    //vpr:registry tables stay init-time and name-unique
//	phasepure     //vpr:computephase code must never reach the
//	              //vpr:memphase shared-memory surface
//	sharedguard   //vpr:shared gate fields stay atomic and
//	              method-accessed; //vpr:coreprivate stays off goroutines
//	detsource     //vpr:detpkg packages must not read wall time or
//	              randomness, spawn goroutines, or leak map order
//
// Usage:
//
//	go run ./cmd/vplint [-tags list] [-maxwaivers N] [packages]
//
// Packages default to ./... . The -tags flag mirrors the build flag so
// tagged trees (the scanoracle differential kernel) stay analyzable:
//
//	go run ./cmd/vplint -tags scanoracle ./internal/pipeline/...
//
// -maxwaivers N fails the run when the loaded packages carry more than N
// //vpr:*exempt / //vpr:allowalloc waiver directives in total — the
// ratchet (make lint pins the committed baseline) that keeps waivers
// from accumulating silently. N < 0 disables the check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags, as for go build")
	list := flag.Bool("list", false, "list the analyzers and exit")
	maxWaivers := flag.Int("maxwaivers", -1, "fail if more than this many waiver directives exist (< 0 disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vplint [-tags list] [-maxwaivers N] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repro invariant linters (docs/LINTING.md). Analyzers:\n\n")
		printAnalyzers(flag.CommandLine.Output())
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		printAnalyzers(os.Stdout)
		return
	}

	cfg := analysis.Config{}
	if *tags != "" {
		cfg.BuildFlags = []string{"-tags=" + *tags}
	}
	fset, pkgs, err := analysis.Load(cfg, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vplint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(fset, pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "vplint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	waivers := lint.CountWaivers(fset, pkgs)
	if *maxWaivers >= 0 && waivers > *maxWaivers {
		fmt.Fprintf(os.Stderr,
			"vplint: %d waiver directives exceed the -maxwaivers %d baseline — remove waivers, or raise the Makefile baseline with a justification\n",
			waivers, *maxWaivers)
		os.Exit(1)
	}
	fmt.Printf("vplint: %d packages clean (%d waivers)\n", len(pkgs), waivers)
}

func printAnalyzers(w io.Writer) {
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, firstLine(a.Doc))
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
