// Command vplint runs the repository's invariant linters — the
// internal/lint analyzer suite — over the given packages and exits
// non-zero if any finding survives. It is the mechanized form of the
// review checklist documented in docs/LINTING.md:
//
//	hotpathalloc  //vpr:hotpath functions and their static callees must
//	              not allocate (waive per line with //vpr:allowalloc)
//	statsflow     every //vpr:stats counter must reach a //vpr:statsink
//	cachekey      every //vpr:cachekey field must render into the
//	              engine's canonical result-cache key
//	reghygiene    //vpr:registry tables stay init-time and name-unique
//
// Usage:
//
//	go run ./cmd/vplint [-tags list] [packages]
//
// Packages default to ./... . The -tags flag mirrors the build flag so
// tagged trees (the scanoracle differential kernel) stay analyzable:
//
//	go run ./cmd/vplint -tags scanoracle ./internal/pipeline/...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags, as for go build")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vplint [-tags list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repro invariant linters (docs/LINTING.md). Analyzers:\n\n")
		printAnalyzers(flag.CommandLine.Output())
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		printAnalyzers(os.Stdout)
		return
	}

	cfg := analysis.Config{}
	if *tags != "" {
		cfg.BuildFlags = []string{"-tags=" + *tags}
	}
	fset, pkgs, err := analysis.Load(cfg, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vplint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(fset, pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "vplint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Printf("vplint: %d packages clean\n", len(pkgs))
}

func printAnalyzers(w io.Writer) {
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, firstLine(a.Doc))
	}
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
