// Command vptrace inspects workload traces: it prints the first
// instructions of a kernel's committed path and summarizes the dynamic
// instruction mix, branch behaviour and memory footprint — useful when
// writing or calibrating workloads.
//
//	vptrace -workload swim -dump 20
//	vptrace -workload go -instr 100000
//	vptrace -workload swim -instr 500000 -save swim.trc   # capture to disk
//	vptrace -load swim.trc                                # analyse a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	vpr "repro"
)

func main() {
	catalog := vpr.Workloads()
	var names []string
	for _, w := range catalog {
		names = append(names, w.Name)
	}

	var (
		workload = flag.String("workload", "swim", "workload name ("+strings.Join(names, ", ")+")")
		instr    = flag.Int64("instr", 50_000, "instructions to analyse")
		dump     = flag.Int("dump", 0, "disassemble the first N trace records")
		save     = flag.String("save", "", "capture the trace to a binary file and exit")
		load     = flag.String("load", "", "analyse a previously saved trace file instead of a workload")
	)
	flag.Parse()

	if *save != "" {
		gen, err := vpr.WorkloadGenerator(*workload)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		n, err := vpr.DumpTrace(f, gen, *instr)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d records of %s to %s\n", n, *workload, *save)
		return
	}

	newGen := func() vpr.TraceGenerator {
		if *load != "" {
			f, err := os.Open(*load)
			if err != nil {
				fatal(err)
			}
			r, err := vpr.OpenTrace(f)
			if err != nil {
				fatal(err)
			}
			return r
		}
		gen, err := vpr.WorkloadGenerator(*workload)
		if err != nil {
			fatal(err)
		}
		return gen
	}

	if *dump > 0 {
		gen := newGen()
		for _, r := range vpr.CollectTrace(gen, int64(*dump)) {
			line := fmt.Sprintf("%6d  pc=%-5d %-24s", r.Seq, r.PC, r.Inst.String())
			info := r.Inst.Op.Info()
			switch {
			case info.IsLoad || info.IsStore:
				line += fmt.Sprintf(" ea=%#x", r.EA)
			case info.IsBranch:
				line += fmt.Sprintf(" taken=%v", r.Taken)
			}
			fmt.Println(line)
		}
		fmt.Println()
	}

	gen := newGen()
	// Count distinct cache lines alongside the mix.
	lines := map[uint64]bool{}
	counting := vpr.TraceFunc(func() (vpr.TraceRecord, bool) {
		r, ok := gen.Next()
		if ok {
			info := r.Inst.Op.Info()
			if info.IsLoad || info.IsStore {
				lines[r.EA/32] = true
			}
		}
		return r, ok
	})
	m := vpr.MeasureTraceMix(counting, *instr)

	if *load != "" {
		fmt.Printf("trace     %s\n", *load)
	} else {
		for _, w := range catalog {
			if w.Name == *workload {
				fmt.Printf("workload  %s (%s): %s\n", w.Name, w.Class, w.Description)
			}
		}
	}
	fmt.Printf("analysed  %d dynamic instructions\n", m.Total)
	fmt.Printf("mix       int-alu %.1f%%  int-mul/div %.1f%%  loads %.1f%%  stores %.1f%%\n",
		pct(m, m.IntALU), pct(m, m.IntMul+m.IntDiv), pct(m, m.Loads), pct(m, m.Stores))
	fmt.Printf("          fp-alu %.1f%%  fp-mul %.1f%%  fp-div %.1f%%  branches %.1f%% (%.1f%% taken)\n",
		pct(m, m.FPALU), pct(m, m.FPMul), pct(m, m.FPDiv), pct(m, m.Branches),
		100*float64(m.Taken)/float64(max(m.Branches, 1)))
	fmt.Printf("dests     %.1f%% int, %.1f%% fp\n", pct(m, m.IntDst), pct(m, m.FPDst))
	fmt.Printf("footprint %d distinct cache lines (%.1f KB touched)\n", len(lines), float64(len(lines))*32/1024)
}

func pct(m vpr.TraceMix, part int64) float64 { return 100 * m.Frac(part) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vptrace:", err)
	os.Exit(1)
}
