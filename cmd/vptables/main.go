// Command vptables regenerates the paper's tables and figures (and this
// repository's ablations) from scratch, printing the same rows and series
// the paper reports. The experiment list is generated from the library's
// experiment registry (vpr.Experiments()); runs are issued through
// vpr.Engine.RunBatch, so independent simulation points execute in
// parallel and points shared between experiments (e.g. the conventional
// baselines of figures 4, 5 and 7) are simulated once and cached.
//
//	vptables                  # everything, 200k instructions per run
//	vptables -exp table2      # just Table 2 (with the 20-cycle footnote)
//	vptables -exp fig4 -instr 500000
//	vptables -exp ablation-release
//	vptables -par 1           # serial (identical output, slower)
//
// Writing EXPERIMENTS.md: vptables -exp all -md > EXPERIMENTS.md
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	vpr "repro"
)

// entry is one runnable unit of the CLI: either a registry experiment
// (run via the engine) or one of the two local, simulation-free printouts
// (the §4.1 configuration listing and the §3.1 analytic pressure model).
type entry struct {
	name  string
	desc  string
	local func(md bool) error // nil for registry experiments
}

// entries returns the CLI's table in the paper's reporting order: the
// machine configuration first, then the registry experiments with the
// analytic pressure model printed after the figures it motivates.
func entries() []entry {
	out := []entry{{"config", "paper Table 1 / §4.1 machine configuration", runConfig}}
	for _, e := range vpr.Experiments() {
		out = append(out, entry{name: e.Name, desc: e.Title})
		if e.Name == "fig7" {
			out = append(out, entry{"pressure", "§3.1 worked example (analytic register pressure)", runPressure})
		}
	}
	return out
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, "+names())
		instr    = flag.Int64("instr", 200_000, "instructions per simulation")
		bench    = flag.String("workloads", "", "comma-separated workload subset (default: all nine)")
		md       = flag.Bool("md", false, "emit Markdown (for EXPERIMENTS.md)")
		progress = flag.Bool("progress", false, "print per-run progress to stderr")
		par      = flag.Int("par", 0, "parallel simulations (0 = GOMAXPROCS); results are identical at any level")
		fetchPol = flag.String("fetch", "", "fetch policy for every run (see the policy list; default round-robin)")
		issueSel = flag.String("issue", "", "issue-select heuristic for every run (see the policy list; default oldest-first)")
		cores    = flag.String("cores", "", "core counts for the multicore/coherence experiments (comma-separated; defaults 1,2,4 and 2,4)")
		l2       = flag.String("l2", "", "shared L2 geometry for the multicore/coherence experiments: SIZE[:BANKS], e.g. 256K:4 or 1M:8")
		coh      = flag.Bool("coherence", false, "run the multicore experiment with one shared address space and the coherence directory on")
		proto    = flag.String("protocol", "", "coherence protocol: msi (default), mesi, or moesi — restricts the coherence experiment's sweep and selects the -coherence protocol")
		dir      = flag.String("dir", "", "coherence directory representation: fullmap (default, exact, ≤64 cores) or limited[:N] (N pointers, broadcast on overflow)")
		step     = flag.String("step", "", "multicore stepping mode: lockstep (default), parallel, or skew:W — results are identical, only throughput changes")
	)
	flag.Usage = usage
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := vpr.ExperimentOptions{Instr: *instr, FetchPolicy: *fetchPol, IssueSelect: *issueSel, Coherence: *coh}
	if _, err := vpr.ParseStepMode(*step); err != nil {
		fmt.Fprintf(os.Stderr, "vptables: -step: %v\n", err)
		os.Exit(1)
	}
	opts.Step = *step
	if _, err := vpr.CoherenceProtocolByName(*proto); err != nil {
		fmt.Fprintf(os.Stderr, "vptables: -protocol: %v\n", err)
		os.Exit(1)
	}
	if err := vpr.ParseDirectoryKind(*dir); err != nil {
		fmt.Fprintf(os.Stderr, "vptables: -dir: %v\n", err)
		os.Exit(1)
	}
	opts.Protocol, opts.Directory = *proto, *dir
	if *bench != "" {
		opts.Workloads = strings.Split(*bench, ",")
	}
	if *cores != "" {
		cs, err := parseCores(*cores)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vptables: -cores: %v\n", err)
			os.Exit(1)
		}
		opts.Cores = cs
	}
	if *l2 != "" {
		size, banks, err := vpr.ParseL2Geometry(*l2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vptables: -l2: %v\n", err)
			os.Exit(1)
		}
		opts.L2SizeBytes, opts.L2Banks = size, banks
	}
	if *fetchPol != "" {
		if _, ok := vpr.FetchPolicyByName(*fetchPol); !ok {
			fmt.Fprintf(os.Stderr, "vptables: unknown fetch policy %q (want %s)\n", *fetchPol, policyNames(vpr.FetchPolicies()))
			os.Exit(1)
		}
	}
	if *issueSel != "" {
		if _, ok := vpr.IssueSelectByName(*issueSel); !ok {
			fmt.Fprintf(os.Stderr, "vptables: unknown issue-select heuristic %q (want %s)\n", *issueSel, policyNames(vpr.IssueSelects()))
			os.Exit(1)
		}
	}
	engineOpts := []vpr.EngineOption{vpr.WithParallelism(*par)}
	if *progress {
		toStderr := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		opts.Progress = toStderr
		engineOpts = append(engineOpts, vpr.WithProgress(toStderr))
	}
	eng := vpr.New(engineOpts...)

	ran := 0
	for _, e := range entries() {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran++
		if *md {
			fmt.Printf("## %s — %s\n\n", e.name, e.desc)
		} else {
			fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		}
		if err := runEntry(ctx, eng, e, opts, *md); err != nil {
			fmt.Fprintf(os.Stderr, "vptables: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "vptables: unknown experiment %q (want all, %s)\n", *exp, names())
		os.Exit(1)
	}
}

func runEntry(ctx context.Context, eng *vpr.Engine, e entry, opts vpr.ExperimentOptions, md bool) error {
	if e.local != nil {
		return e.local(md)
	}
	res, err := eng.RunExperiment(ctx, e.name, opts)
	if err != nil {
		return err
	}
	codeBlock(md, res.Text)
	return nil
}

func names() string {
	var ns []string
	for _, e := range entries() {
		ns = append(ns, e.name)
	}
	return strings.Join(ns, ", ")
}

// parseCores parses a comma-separated core-count list ("1,2,4").
func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func policyNames(infos []vpr.PolicyInfo) string {
	var ns []string
	for _, p := range infos {
		ns = append(ns, p.Name)
	}
	return strings.Join(ns, ", ")
}

// usage augments the flag listing with the registry-generated experiment
// reference so `vptables -h` documents what each name reproduces.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "usage: vptables [flags]\n\nflags:\n")
	flag.PrintDefaults()
	fmt.Fprintf(flag.CommandLine.Output(), "\nevery experiment, its options and how to reproduce each table are documented\nin docs/EXPERIMENTS.md.\n")
	fmt.Fprintf(flag.CommandLine.Output(), "\nexperiments (from the registry):\n")
	fmt.Fprintf(flag.CommandLine.Output(), "  %-20s %s\n", "config", "paper Table 1 / §4.1 machine configuration (local printout)")
	for _, e := range vpr.Experiments() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-20s %s\n      %s\n", e.Name, e.Title, e.Reproduces)
		if e.Name == "fig7" {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-20s %s\n", "pressure", "§3.1 worked example, analytic (local printout)")
		}
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\nfetch policies (-fetch, from the policy registry):\n")
	for _, p := range vpr.FetchPolicies() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-20s %s\n", p.Name, p.Description)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\nissue-select heuristics (-issue, from the policy registry):\n")
	for _, p := range vpr.IssueSelects() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-20s %s\n", p.Name, p.Description)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\ncoherence protocols (-protocol, from the protocol registry):\n")
	for _, p := range vpr.CoherenceProtocols() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-20s %s\n", p.Name(), p.Description())
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\ndirectory representations (-dir, from the directory registry):\n")
	for _, d := range vpr.DirectoryKinds() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-20s %s\n", d.Name, d.Description)
	}
}

func codeBlock(md bool, body string) {
	if md {
		fmt.Printf("```\n%s```\n", body)
	} else {
		fmt.Print(body)
	}
}

func runConfig(bool) error {
	cfg := vpr.DefaultConfig()
	fmt.Printf("fetch/decode/issue/commit width: %d/%d/%d/%d\n",
		cfg.FetchWidth, cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth)
	fmt.Printf("ROB %d, IQ %d\n", cfg.ROBSize, cfg.IQSize)
	fmt.Printf("FUs: %d simple int (1), %d complex int (mul 9, div 67), %d eff-addr (1), %d simple FP (4), %d FP mul (4), %d FP div/sqrt (16)\n",
		cfg.SimpleIntUnits, cfg.ComplexIntUnits, cfg.EffAddrUnits, cfg.SimpleFPUnits, cfg.FPMulUnits, cfg.FPDivUnits)
	fmt.Printf("register files: %d logical + %d physical per file, %dR/%dW ports\n",
		cfg.Rename.LogicalRegs, cfg.Rename.PhysRegs, cfg.RFReadPorts, cfg.RFWritePorts)
	fmt.Printf("cache: %d KB direct-mapped, %dB lines, hit %d, miss +%d, %d MSHRs, %d ports, bus %d cycles/line\n",
		cfg.Cache.SizeBytes/1024, cfg.Cache.LineBytes, cfg.Cache.HitLatency,
		cfg.Cache.MissPenalty, cfg.Cache.MSHRs, cfg.CachePorts, cfg.Cache.BusCyclesPerLine)
	fmt.Printf("BHT: %d entries, 2-bit counters; disambiguation: %s\n", cfg.BHTEntries, cfg.Disambiguation)
	return nil
}

func runPressure(md bool) error {
	var b strings.Builder
	lat := vpr.PaperExampleLatencies()
	for _, pt := range []vpr.AllocPoint{vpr.AllocDecode, vpr.AllocIssue, vpr.AllocWriteback} {
		ivs := vpr.ChainPressure(lat, pt)
		fmt.Fprintf(&b, "%-10s total %3d register-cycles (", pt, vpr.TotalPressure(ivs))
		for i, iv := range ivs {
			if i > 0 {
				fmt.Fprint(&b, ", ")
			}
			fmt.Fprintf(&b, "p%d: %d", i+1, iv.Cycles())
		}
		fmt.Fprintln(&b, ")")
	}
	fmt.Fprintln(&b, "paper: decode 151 (42/52/57), issue 88 (41/31/16), write-back 38 (21/11/6)")
	codeBlock(md, b.String())
	return nil
}
