// Command vptables regenerates the paper's tables and figures (and this
// repository's ablations) from scratch, printing the same rows and series
// the paper reports.
//
//	vptables                  # everything, 200k instructions per run
//	vptables -exp table2      # just Table 2 (with the 20-cycle footnote)
//	vptables -exp fig4 -instr 500000
//	vptables -exp ablation-release
//
// Writing EXPERIMENTS.md: vptables -exp all -md > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	vpr "repro"
)

type experiment struct {
	name string
	desc string
	run  func(opts vpr.ExperimentOptions, md bool) error
}

var table = []experiment{
	{"config", "paper Table 1 / §4.1 machine configuration", runConfig},
	{"table2", "Table 2: conventional vs VP write-back, 64 regs, max NRR", runTable2},
	{"fig4", "Figure 4: VP write-back speedup across NRR", runFig4},
	{"fig5", "Figure 5: VP issue-allocation speedup across NRR", runFig5},
	{"fig6", "Figure 6: write-back vs issue allocation", runFig6},
	{"fig7", "Figure 7: IPC across 48/64/96 physical registers", runFig7},
	{"pressure", "§3.1 worked example (analytic register pressure)", runPressure},
	{"ablation-release", "ablation: conventional early register release", runAblRelease},
	{"ablation-disamb", "ablation: speculative vs conservative disambiguation", runAblDisamb},
	{"ablation-recovery", "ablation: recovery penalty sweep", runAblRecovery},
	{"ablation-nrr-split", "ablation: NRRint != NRRfp", runAblSplit},
	{"smt", "future work (§5): SMT scaling of the VP advantage", runSMT},
	{"lifetime", "supplementary: §3.1 register-holding time, measured in vivo", runLifetime},
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, "+names())
		instr    = flag.Int64("instr", 200_000, "instructions per simulation")
		bench    = flag.String("workloads", "", "comma-separated workload subset (default: all nine)")
		md       = flag.Bool("md", false, "emit Markdown (for EXPERIMENTS.md)")
		progress = flag.Bool("progress", false, "print per-run progress to stderr")
	)
	flag.Parse()

	opts := vpr.ExperimentOptions{Instr: *instr}
	if *bench != "" {
		opts.Workloads = strings.Split(*bench, ",")
	}
	if *progress {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ran := 0
	for _, e := range table {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran++
		if *md {
			fmt.Printf("## %s — %s\n\n", e.name, e.desc)
		} else {
			fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		}
		if err := e.run(opts, *md); err != nil {
			fmt.Fprintf(os.Stderr, "vptables: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "vptables: unknown experiment %q (want all, %s)\n", *exp, names())
		os.Exit(1)
	}
}

func names() string {
	var ns []string
	for _, e := range table {
		ns = append(ns, e.name)
	}
	return strings.Join(ns, ", ")
}

func codeBlock(md bool, body string) {
	if md {
		fmt.Printf("```\n%s```\n", body)
	} else {
		fmt.Print(body)
	}
}

func runConfig(vpr.ExperimentOptions, bool) error {
	cfg := vpr.DefaultConfig()
	fmt.Printf("fetch/decode/issue/commit width: %d/%d/%d/%d\n",
		cfg.FetchWidth, cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth)
	fmt.Printf("ROB %d, IQ %d\n", cfg.ROBSize, cfg.IQSize)
	fmt.Printf("FUs: %d simple int (1), %d complex int (mul 9, div 67), %d eff-addr (1), %d simple FP (4), %d FP mul (4), %d FP div/sqrt (16)\n",
		cfg.SimpleIntUnits, cfg.ComplexIntUnits, cfg.EffAddrUnits, cfg.SimpleFPUnits, cfg.FPMulUnits, cfg.FPDivUnits)
	fmt.Printf("register files: %d logical + %d physical per file, %dR/%dW ports\n",
		cfg.Rename.LogicalRegs, cfg.Rename.PhysRegs, cfg.RFReadPorts, cfg.RFWritePorts)
	fmt.Printf("cache: %d KB direct-mapped, %dB lines, hit %d, miss +%d, %d MSHRs, %d ports, bus %d cycles/line\n",
		cfg.Cache.SizeBytes/1024, cfg.Cache.LineBytes, cfg.Cache.HitLatency,
		cfg.Cache.MissPenalty, cfg.Cache.MSHRs, cfg.CachePorts, cfg.Cache.BusCyclesPerLine)
	fmt.Printf("BHT: %d entries, 2-bit counters; disambiguation: %s\n", cfg.BHTEntries, cfg.Disambiguation)
	return nil
}

func runTable2(opts vpr.ExperimentOptions, md bool) error {
	res, err := vpr.RunTable2(opts, true)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderTable2(res))
	return nil
}

func runFig4(opts vpr.ExperimentOptions, md bool) error {
	sweep, err := vpr.RunFigure4(opts)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderNRRSweep(sweep))
	return nil
}

func runFig5(opts vpr.ExperimentOptions, md bool) error {
	sweep, err := vpr.RunFigure5(opts)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderNRRSweep(sweep))
	return nil
}

func runFig6(opts vpr.ExperimentOptions, md bool) error {
	rows, err := vpr.RunFigure6(opts)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderFigure6(rows))
	return nil
}

func runFig7(opts vpr.ExperimentOptions, md bool) error {
	fig, err := vpr.RunFigure7(opts)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderFigure7(fig))
	return nil
}

func runPressure(_ vpr.ExperimentOptions, md bool) error {
	var b strings.Builder
	lat := vpr.PaperExampleLatencies()
	for _, pt := range []vpr.AllocPoint{vpr.AllocDecode, vpr.AllocIssue, vpr.AllocWriteback} {
		ivs := vpr.ChainPressure(lat, pt)
		fmt.Fprintf(&b, "%-10s total %3d register-cycles (", pt, vpr.TotalPressure(ivs))
		for i, iv := range ivs {
			if i > 0 {
				fmt.Fprint(&b, ", ")
			}
			fmt.Fprintf(&b, "p%d: %d", i+1, iv.Cycles())
		}
		fmt.Fprintln(&b, ")")
	}
	fmt.Fprintln(&b, "paper: decode 151 (42/52/57), issue 88 (41/31/16), write-back 38 (21/11/6)")
	codeBlock(md, b.String())
	return nil
}

func runAblRelease(opts vpr.ExperimentOptions, md bool) error {
	rows, err := vpr.RunEarlyReleaseAblation(opts)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderAblation(rows, "releases/1k or exec/commit"))
	return nil
}

func runAblDisamb(opts vpr.ExperimentOptions, md bool) error {
	rows, err := vpr.RunDisambiguationAblation(opts)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderAblation(rows, "violations/1k"))
	return nil
}

func runAblRecovery(opts vpr.ExperimentOptions, md bool) error {
	rows, err := vpr.RunRecoveryAblation(opts, nil)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderAblation(rows, "-"))
	return nil
}

func runAblSplit(opts vpr.ExperimentOptions, md bool) error {
	rows, err := vpr.RunSplitNRRAblation(opts)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderAblation(rows, "-"))
	return nil
}

func runLifetime(opts vpr.ExperimentOptions, md bool) error {
	rows, err := vpr.RunLifetime(opts)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderLifetime(rows))
	return nil
}

func runSMT(opts vpr.ExperimentOptions, md bool) error {
	if len(opts.Workloads) == 0 {
		// The full catalog × three thread counts is slow; the sharing
		// story is told by a representative subset.
		opts.Workloads = []string{"hydro2d", "mgrid", "swim", "compress", "go"}
	}
	rows, err := vpr.RunSMTScaling(nil, opts)
	if err != nil {
		return err
	}
	codeBlock(md, vpr.RenderSMT(rows))
	return nil
}
