// Command vpsim runs a single simulation point: one workload, one renaming
// scheme, one machine configuration. It is the low-level probe; use
// vptables to regenerate whole paper tables and figures.
//
// Example:
//
//	vpsim -workload swim -scheme vp-wb -regs 64 -nrr 32 -instr 200000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	vpr "repro"
)

func workloadNames() []string {
	var names []string
	for _, w := range vpr.Workloads() {
		names = append(names, w.Name)
	}
	return names
}

func main() {
	var (
		workload = flag.String("workload", "swim", "workload name ("+strings.Join(workloadNames(), ", ")+")")
		scheme   = flag.String("scheme", "conv", "renaming scheme: conv, vp-wb, vp-issue")
		regs     = flag.Int("regs", 64, "physical registers per file")
		nrr      = flag.Int("nrr", -1, "reserved registers (NRR); -1 means maximum (regs-32)")
		instr    = flag.Int64("instr", 200000, "instructions to simulate")
		penalty  = flag.Int("miss-penalty", 50, "cache miss penalty in cycles")
		l2       = flag.Int("l2", 0, "finite L2 size in KB (0 = the paper's infinite L2)")
		l2miss   = flag.Int("l2-miss-penalty", 150, "memory latency when the finite L2 also misses")
		disamb   = flag.String("disamb", "speculative", "memory disambiguation: speculative, conservative")
		early    = flag.Bool("early-release", false, "conventional scheme: enable the early-release ablation")
		jsonOut  = flag.Bool("json", false, "emit statistics as JSON")
		check    = flag.Bool("check", true, "enable golden-model value checks")
		debug    = flag.Bool("debug", false, "run renamer invariant checks every cycle (slow)")
	)
	flag.Parse()

	cfg := vpr.DefaultConfig()
	switch *scheme {
	case "conv":
		cfg.Scheme = vpr.SchemeConventional
	case "vp-wb":
		cfg.Scheme = vpr.SchemeVPWriteback
	case "vp-issue":
		cfg.Scheme = vpr.SchemeVPIssue
	default:
		fatalf("unknown scheme %q (want conv, vp-wb or vp-issue)", *scheme)
	}
	cfg.Rename.PhysRegs = *regs
	if *nrr < 0 {
		*nrr = cfg.Rename.MaxNRR()
	}
	cfg.Rename.NRRInt = *nrr
	cfg.Rename.NRRFP = *nrr
	cfg.Rename.EarlyRelease = *early
	cfg.Cache.MissPenalty = *penalty
	if *l2 > 0 {
		cfg.Cache.L2Enabled = true
		cfg.Cache.L2SizeBytes = *l2 * 1024
		cfg.Cache.L2MissPenalty = *l2miss
	}
	cfg.ValueCheck = *check
	cfg.Debug = *debug
	switch *disamb {
	case "speculative":
		cfg.Disambiguation = vpr.DisambSpeculative
	case "conservative":
		cfg.Disambiguation = vpr.DisambConservative
	default:
		fatalf("unknown disambiguation %q", *disamb)
	}

	// Ctrl-C cancels the run mid-simulation instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := vpr.New(vpr.WithParallelism(1))
	res, err := eng.Run(ctx, vpr.RunSpec{Workload: *workload, Config: cfg, MaxInstr: *instr})
	if err != nil {
		fatalf("%v", err)
	}
	st := res.Stats
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Workload    string
			Scheme      string
			Regs, NRR   int
			IPC         float64
			BHTAccuracy float64
			Stats       vpr.Stats
		}{*workload, *scheme, *regs, *nrr, st.IPC(), res.BHTAccuracy, st}); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("workload   %s (%s scheme, %d regs/file, NRR=%d)\n", *workload, *scheme, *regs, *nrr)
	fmt.Printf("IPC        %.3f   (%d instructions in %d cycles)\n", st.IPC(), st.Committed, st.Cycles)
	fmt.Printf("exec/commit %.2f   re-executions %d, issue blocks %d\n", st.ExecPerCommit(), st.Reexecutions, st.IssueBlocks)
	fmt.Printf("branches   %.1f%% mispredicted (%d/%d), BHT accuracy %.3f\n",
		st.MispredictRate()*100, st.Mispredicts, st.CondBranches, res.BHTAccuracy)
	fmt.Printf("cache      %.1f%% miss ratio (%d primary + %d merged / %d accesses), peak MSHRs %d\n",
		st.MissRatio()*100, st.CacheMisses, st.CacheMergedMiss, st.CacheAccesses, st.PeakMSHRs)
	fmt.Printf("memory     %d forwarded, %d violations (%d squashed), %d SB commit stalls\n",
		st.LoadsForwarded, st.MemViolations, st.SquashedByMem, st.CommitSBStalls)
	fmt.Printf("occupancy  ROB %.1f, IQ %.1f, int regs %.1f, fp regs %.1f\n",
		st.AvgROB(), st.AvgIQ(), st.AvgIntRegs(), st.AvgFPRegs())
	fmt.Printf("stalls     rename(regs) %d, ROB %d, IQ %d\n", st.RenameRegStall, st.ROBStalls, st.IQStalls)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vpsim: "+format+"\n", args...)
	os.Exit(1)
}
